# Empty dependencies file for adios_net.
# This may be replaced when dependencies are built.
