file(REMOVE_RECURSE
  "libadios_unithread.a"
)
