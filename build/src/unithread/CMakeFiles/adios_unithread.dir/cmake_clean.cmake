file(REMOVE_RECURSE
  "CMakeFiles/adios_unithread.dir/context.cc.o"
  "CMakeFiles/adios_unithread.dir/context.cc.o.d"
  "CMakeFiles/adios_unithread.dir/context_switch_x86_64.S.o"
  "CMakeFiles/adios_unithread.dir/cooperative_scheduler.cc.o"
  "CMakeFiles/adios_unithread.dir/cooperative_scheduler.cc.o.d"
  "CMakeFiles/adios_unithread.dir/universal_stack.cc.o"
  "CMakeFiles/adios_unithread.dir/universal_stack.cc.o.d"
  "libadios_unithread.a"
  "libadios_unithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/adios_unithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
