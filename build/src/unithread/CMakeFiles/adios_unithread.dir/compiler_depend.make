# Empty compiler generated dependencies file for adios_unithread.
# This may be replaced when dependencies are built.
