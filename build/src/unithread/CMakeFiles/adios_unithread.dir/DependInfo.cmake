
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/unithread/context_switch_x86_64.S" "/root/repo/build/src/unithread/CMakeFiles/adios_unithread.dir/context_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unithread/context.cc" "src/unithread/CMakeFiles/adios_unithread.dir/context.cc.o" "gcc" "src/unithread/CMakeFiles/adios_unithread.dir/context.cc.o.d"
  "/root/repo/src/unithread/cooperative_scheduler.cc" "src/unithread/CMakeFiles/adios_unithread.dir/cooperative_scheduler.cc.o" "gcc" "src/unithread/CMakeFiles/adios_unithread.dir/cooperative_scheduler.cc.o.d"
  "/root/repo/src/unithread/universal_stack.cc" "src/unithread/CMakeFiles/adios_unithread.dir/universal_stack.cc.o" "gcc" "src/unithread/CMakeFiles/adios_unithread.dir/universal_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/adios_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
