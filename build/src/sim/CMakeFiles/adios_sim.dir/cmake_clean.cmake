file(REMOVE_RECURSE
  "CMakeFiles/adios_sim.dir/engine.cc.o"
  "CMakeFiles/adios_sim.dir/engine.cc.o.d"
  "CMakeFiles/adios_sim.dir/trace.cc.o"
  "CMakeFiles/adios_sim.dir/trace.cc.o.d"
  "libadios_sim.a"
  "libadios_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adios_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
