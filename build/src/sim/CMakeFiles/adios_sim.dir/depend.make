# Empty dependencies file for adios_sim.
# This may be replaced when dependencies are built.
