file(REMOVE_RECURSE
  "libadios_sim.a"
)
