file(REMOVE_RECURSE
  "CMakeFiles/vector_search_tail_latency.dir/vector_search_tail_latency.cpp.o"
  "CMakeFiles/vector_search_tail_latency.dir/vector_search_tail_latency.cpp.o.d"
  "vector_search_tail_latency"
  "vector_search_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_search_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
