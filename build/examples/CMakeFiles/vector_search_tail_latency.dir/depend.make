# Empty dependencies file for vector_search_tail_latency.
# This may be replaced when dependencies are built.
