file(REMOVE_RECURSE
  "CMakeFiles/unithreads_standalone.dir/unithreads_standalone.cpp.o"
  "CMakeFiles/unithreads_standalone.dir/unithreads_standalone.cpp.o.d"
  "unithreads_standalone"
  "unithreads_standalone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unithreads_standalone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
