# Empty compiler generated dependencies file for unithreads_standalone.
# This may be replaced when dependencies are built.
