# Empty dependencies file for kv_cache_comparison.
# This may be replaced when dependencies are built.
