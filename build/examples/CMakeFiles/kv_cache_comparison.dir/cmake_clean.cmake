file(REMOVE_RECURSE
  "CMakeFiles/kv_cache_comparison.dir/kv_cache_comparison.cpp.o"
  "CMakeFiles/kv_cache_comparison.dir/kv_cache_comparison.cpp.o.d"
  "kv_cache_comparison"
  "kv_cache_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cache_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
