file(REMOVE_RECURSE
  "CMakeFiles/oltp_on_far_memory.dir/oltp_on_far_memory.cpp.o"
  "CMakeFiles/oltp_on_far_memory.dir/oltp_on_far_memory.cpp.o.d"
  "oltp_on_far_memory"
  "oltp_on_far_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_on_far_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
