# Empty compiler generated dependencies file for oltp_on_far_memory.
# This may be replaced when dependencies are built.
