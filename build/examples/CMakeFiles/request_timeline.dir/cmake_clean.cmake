file(REMOVE_RECURSE
  "CMakeFiles/request_timeline.dir/request_timeline.cpp.o"
  "CMakeFiles/request_timeline.dir/request_timeline.cpp.o.d"
  "request_timeline"
  "request_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
