# Empty compiler generated dependencies file for request_timeline.
# This may be replaced when dependencies are built.
