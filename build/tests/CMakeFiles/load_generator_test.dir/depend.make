# Empty dependencies file for load_generator_test.
# This may be replaced when dependencies are built.
