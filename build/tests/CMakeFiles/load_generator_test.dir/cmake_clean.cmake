file(REMOVE_RECURSE
  "CMakeFiles/load_generator_test.dir/load_generator_test.cc.o"
  "CMakeFiles/load_generator_test.dir/load_generator_test.cc.o.d"
  "load_generator_test"
  "load_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
