file(REMOVE_RECURSE
  "CMakeFiles/system_config_test.dir/system_config_test.cc.o"
  "CMakeFiles/system_config_test.dir/system_config_test.cc.o.d"
  "system_config_test"
  "system_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
