# Empty dependencies file for system_config_test.
# This may be replaced when dependencies are built.
