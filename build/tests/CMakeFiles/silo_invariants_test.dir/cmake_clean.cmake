file(REMOVE_RECURSE
  "CMakeFiles/silo_invariants_test.dir/silo_invariants_test.cc.o"
  "CMakeFiles/silo_invariants_test.dir/silo_invariants_test.cc.o.d"
  "silo_invariants_test"
  "silo_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silo_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
