# Empty compiler generated dependencies file for reclaimer_test.
# This may be replaced when dependencies are built.
