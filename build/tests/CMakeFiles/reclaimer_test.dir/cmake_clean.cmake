file(REMOVE_RECURSE
  "CMakeFiles/reclaimer_test.dir/reclaimer_test.cc.o"
  "CMakeFiles/reclaimer_test.dir/reclaimer_test.cc.o.d"
  "reclaimer_test"
  "reclaimer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclaimer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
