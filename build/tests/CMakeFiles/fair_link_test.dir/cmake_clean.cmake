file(REMOVE_RECURSE
  "CMakeFiles/fair_link_test.dir/fair_link_test.cc.o"
  "CMakeFiles/fair_link_test.dir/fair_link_test.cc.o.d"
  "fair_link_test"
  "fair_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
