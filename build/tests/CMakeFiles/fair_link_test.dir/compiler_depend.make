# Empty compiler generated dependencies file for fair_link_test.
# This may be replaced when dependencies are built.
