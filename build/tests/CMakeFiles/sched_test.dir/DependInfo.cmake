
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched_test.cc" "tests/CMakeFiles/sched_test.dir/sched_test.cc.o" "gcc" "tests/CMakeFiles/sched_test.dir/sched_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adios_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/adios_net.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/adios_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/adios_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/adios_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/adios_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adios_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/unithread/CMakeFiles/adios_unithread.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/adios_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
