# Empty compiler generated dependencies file for cooperative_scheduler_test.
# This may be replaced when dependencies are built.
