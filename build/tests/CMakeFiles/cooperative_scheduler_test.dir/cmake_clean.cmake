file(REMOVE_RECURSE
  "CMakeFiles/cooperative_scheduler_test.dir/cooperative_scheduler_test.cc.o"
  "CMakeFiles/cooperative_scheduler_test.dir/cooperative_scheduler_test.cc.o.d"
  "cooperative_scheduler_test"
  "cooperative_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
