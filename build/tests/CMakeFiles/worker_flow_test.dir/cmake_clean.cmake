file(REMOVE_RECURSE
  "CMakeFiles/worker_flow_test.dir/worker_flow_test.cc.o"
  "CMakeFiles/worker_flow_test.dir/worker_flow_test.cc.o.d"
  "worker_flow_test"
  "worker_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worker_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
