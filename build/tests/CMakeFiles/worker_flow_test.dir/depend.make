# Empty dependencies file for worker_flow_test.
# This may be replaced when dependencies are built.
