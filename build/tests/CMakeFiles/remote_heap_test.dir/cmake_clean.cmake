file(REMOVE_RECURSE
  "CMakeFiles/remote_heap_test.dir/remote_heap_test.cc.o"
  "CMakeFiles/remote_heap_test.dir/remote_heap_test.cc.o.d"
  "remote_heap_test"
  "remote_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
