# Empty compiler generated dependencies file for remote_heap_test.
# This may be replaced when dependencies are built.
