file(REMOVE_RECURSE
  "CMakeFiles/md_system_test.dir/md_system_test.cc.o"
  "CMakeFiles/md_system_test.dir/md_system_test.cc.o.d"
  "md_system_test"
  "md_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
