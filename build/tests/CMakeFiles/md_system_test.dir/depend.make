# Empty dependencies file for md_system_test.
# This may be replaced when dependencies are built.
