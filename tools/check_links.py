#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates, across README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and
docs/*.md:

  * every relative link points at a file or directory that exists;
  * every anchor (`#section`, in-page or cross-doc) resolves to a heading
    in the target document, using GitHub's heading-slug rules;
  * every file under docs/ is linked from README.md's documentation map,
    so no design doc is unreachable from the front page.

External (http/https/mailto) links are not fetched. Stdlib only; exits
nonzero with one line per problem, so CI can run it next to the lint leg:

    python3 tools/check_links.py
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Docs whose links we validate. PAPER.md / PAPERS.md / SNIPPETS.md / ISSUE.md
# are generated research-context files, not part of the documentation graph.
DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]

# Inline markdown links: [text](target). Images ![alt](target) match too via
# the same pattern (the leading ! is simply not captured).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def doc_paths():
    paths = [REPO / name for name in DOC_FILES if (REPO / name).exists()]
    paths.extend(sorted((REPO / "docs").glob("*.md")))
    return paths


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = heading.strip()
    # Strip markdown emphasis/code markers and trailing heading hashes.
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"\s+#+\s*$", "", text)
    # Strip inline links, keeping the text: [text](url) -> text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    text = text.replace(" ", "-")
    return text


def extract(path):
    """Returns (links, anchors): links as (line_no, target), anchors as a set."""
    links = []
    anchors = set()
    slug_counts = {}
    in_fence = False
    for line_no, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = HEADING_RE.match(line)
        if heading:
            slug = github_slug(heading.group(2))
            # GitHub de-duplicates repeated headings with -1, -2, ...
            n = slug_counts.get(slug, 0)
            slug_counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
            continue
        for match in LINK_RE.finditer(line):
            links.append((line_no, match.group(1)))
    return links, anchors


def main():
    problems = []
    docs = doc_paths()
    anchors_of = {}
    links_of = {}
    for path in docs:
        links_of[path], anchors_of[path] = extract(path)

    for path in docs:
        rel = path.relative_to(REPO)
        for line_no, target in links_of[path]:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    problems.append(f"{rel}:{line_no}: broken link: {target}")
                    continue
            else:
                dest = path  # Pure in-page anchor.
            if anchor:
                if dest.suffix != ".md":
                    continue  # Anchors into source files are line fragments.
                if dest not in anchors_of:
                    if dest.exists():
                        _, anchors_of[dest] = extract(dest)
                    else:
                        continue
                if anchor not in anchors_of[dest]:
                    problems.append(
                        f"{rel}:{line_no}: broken anchor: {target} "
                        f"(no heading '#{anchor}' in {dest.relative_to(REPO)})"
                    )

    # Reachability: every docs/*.md must be linked from README.md.
    readme = REPO / "README.md"
    readme_targets = set()
    for _, target in links_of.get(readme, []):
        file_part = target.partition("#")[0]
        if file_part:
            readme_targets.add((readme.parent / file_part).resolve())
    for doc in sorted((REPO / "docs").glob("*.md")):
        if doc.resolve() not in readme_targets:
            problems.append(
                f"README.md: {doc.relative_to(REPO)} is not linked from the "
                f"documentation map"
            )

    for problem in problems:
        print(problem)
    checked = sum(len(v) for v in links_of.values())
    if problems:
        print(f"FAIL: {len(problems)} problem(s) across {len(docs)} docs "
              f"({checked} links checked)")
        return 1
    print(f"OK: {len(docs)} docs, {checked} links, all targets and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
