"""Name-matched call graph with transitive `may_suspend` propagation.

Resolution is deliberately conservative: a call site `x->Wait(...)` taints
the caller if *any* indexed function named `Wait` may suspend. Overloads
and receiver types are not resolved -- under-resolution would miss real
hazards, over-resolution only costs an `ADIOS_NO_SUSPEND` annotation or a
suppression comment at the (rare) colliding site.

Seeds are the engine's suspension primitives plus anything annotated
ADIOS_MAY_SUSPEND. Functions annotated ADIOS_NO_SUSPEND never propagate
taint to their callers; instead, if the analysis shows such a function
transitively reaching a suspension point, that contradiction is reported
as a suspend-safety finding.

Known soundness hole (documented in docs/STATIC_ANALYSIS.md): calls made
through std::function / function pointers are invisible to the graph.
"""

from . import cpp_index
from .cpp_index import CONTROL_KEYWORDS

# Engine-API suspension points: qualified methods...
SEED_QUALNAMES = {
    "Engine::Wait",
    "Engine::SuspendCurrent",
    "Engine::RawSwitch",
    "Engine::SwitchToMain",
    "Engine::Run",
    "Engine::RunUntil",
    "WaitQueue::Wait",
}

# ... and the free-function context-switch layer underneath them.
SEED_BARE = {
    "AdiosContextSwitch",
    "AdiosTrackedContextSwitch",
    "AdiosHeavyContextSwitch",
    "AdiosContextSwitchAsm",
    "AdiosHeavyContextSwitchAsm",
}


def extract_calls(fn):
    """[(callee name, line)] for every `ident(` inside fn's body."""
    tokens = fn.file.tokens
    calls = []
    i = fn.body_start + 1
    end = fn.body_end
    while i < end:
        t = tokens[i]
        if t.kind == "id" and t.text not in CONTROL_KEYWORDS and \
                i + 1 < end and tokens[i + 1].text == "(":
            calls.append((t.text, t.line))
        i += 1
    return calls


class CallGraph:
    def __init__(self, file_indexes):
        self.indexes = file_indexes
        self.defs = []            # FunctionDef with bodies
        self.all_fns = []         # Including decl-only prototypes
        self.calls = {}           # id(fn) -> [(name, line)]
        self.ann_by_qualname = {} # qualname -> merged annotation set
        self.suspending_names = set()
        for idx in file_indexes:
            for fn in idx.functions:
                self.all_fns.append(fn)
                merged = self.ann_by_qualname.setdefault(fn.qualname, set())
                merged |= fn.annotations
                if not fn.decl_only:
                    self.defs.append(fn)
        self._propagate()

    def merged_annotations(self, fn):
        return self.ann_by_qualname.get(fn.qualname, set())

    def _seeded(self, fn):
        if fn.qualname in SEED_QUALNAMES or fn.name in SEED_BARE:
            return True
        return cpp_index.ANNOTATION_MAY_SUSPEND in self.merged_annotations(fn)

    def _propagate(self):
        names = self.suspending_names
        names.update(q.split("::")[-1] for q in SEED_QUALNAMES)
        names.update(SEED_BARE)
        for fn in self.all_fns:
            if cpp_index.ANNOTATION_MAY_SUSPEND in fn.annotations:
                names.add(fn.name)
        for fn in self.defs:
            self.calls[id(fn)] = extract_calls(fn)
            if self._seeded(fn):
                fn.may_suspend = True
        changed = True
        while changed:
            changed = False
            for fn in self.defs:
                if fn.may_suspend:
                    continue
                for name, line in self.calls[id(fn)]:
                    if name in names:
                        fn.may_suspend = True
                        fn.taint_path = (name, line)
                        no_susp = cpp_index.ANNOTATION_NO_SUSPEND in \
                            self.merged_annotations(fn)
                        if not no_susp and fn.name not in names:
                            names.add(fn.name)
                        changed = True
                        break

    def is_suspending_name(self, name):
        """True if a call to `name` may suspend the calling fiber."""
        return name in self.suspending_names

    def no_suspend_violations(self):
        """Functions annotated ADIOS_NO_SUSPEND whose bodies nevertheless
        reach a suspension point."""
        out = []
        for fn in self.defs:
            if cpp_index.ANNOTATION_NO_SUSPEND in self.merged_annotations(fn) \
                    and fn.may_suspend and fn.taint_path is not None:
                out.append(fn)
        return out
