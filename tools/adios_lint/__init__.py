"""adios-lint: fiber-aware static analysis for the Adios codebase.

A stdlib-only analyzer (same zero-dependency discipline as
tools/check_links.py) built from four layers:

  lexer.py      -- a lightweight C++ lexer (tokens, comments, preprocessor
                   lines) that is deliberately ignorant of templates and
                   overload resolution;
  cpp_index.py  -- a per-translation-unit index of function definitions,
                   annotated prototypes, enums, and config structs;
  callgraph.py  -- a name-matched call graph with transitive `may_suspend`
                   propagation seeded from the engine API and from
                   ADIOS_MAY_SUSPEND annotations;
  rules.py      -- the rule catalog (suspend-safety, trace-pairing,
                   sim-time-hygiene, default-off-knob), each a static
                   complement to one of the runtime invariant checks in
                   src/check/.

Run as `python3 tools/adios_lint [paths...]`; see docs/STATIC_ANALYSIS.md
for the rule catalog, the annotation macros (src/base/annotations.h), and
the suppression syntax (`// adios-lint: ignore(rule) -- reason`).
"""

__all__ = ["lexer", "cpp_index", "callgraph", "rules", "cli"]
