"""Per-translation-unit index: functions, annotated prototypes, enums, and
config structs.

The parser is a brace-context machine over the lexer's token stream. It
tracks namespace/class scopes exactly, records every function *definition*
with its body token range, and fast-forwards through the bodies so nothing
inside a function (lambdas, local classes) can confuse the scope stack.
It understands just enough C++ for this codebase's style: out-of-line
`Class::Method` definitions, inline methods, constructor initializer
lists, `template <...>` headers, attributes, and `alignas`.

It does not try to resolve types or overloads -- the call graph matches by
name, conservatively (see callgraph.py).
"""

from . import lexer

ANNOTATION_MAY_SUSPEND = "ADIOS_MAY_SUSPEND"
ANNOTATION_NO_SUSPEND = "ADIOS_NO_SUSPEND"
_ANNOTATIONS = (ANNOTATION_MAY_SUSPEND, ANNOTATION_NO_SUSPEND)

# Keywords that can directly precede a `(` without being a call/definition.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "new", "delete", "throw", "co_await", "co_return",
    "static_assert", "noexcept", "else", "do", "case", "default", "typeid",
    "assert",
}

_TRAILER_IDS = {"const", "noexcept", "override", "final", "mutable"}


class FunctionDef:
    __slots__ = ("name", "qualifier", "file", "line", "body_start", "body_end",
                 "annotations", "decl_only", "may_suspend", "taint_path")

    def __init__(self, name, qualifier, file, line, body_start=-1, body_end=-1,
                 annotations=()):
        self.name = name
        self.qualifier = qualifier  # Innermost class name, or "".
        self.file = file            # LexedFile
        self.line = line
        self.body_start = body_start  # Token index of `{` (definitions only).
        self.body_end = body_end      # Token index of matching `}`.
        self.annotations = set(annotations)
        self.decl_only = body_start < 0
        self.may_suspend = False
        self.taint_path = None  # (callee_name, line) that tainted this fn.

    @property
    def qualname(self):
        return f"{self.qualifier}::{self.name}" if self.qualifier else self.name

    def body_tokens(self):
        if self.decl_only:
            return []
        return self.file.tokens[self.body_start:self.body_end + 1]

    def __repr__(self):
        return f"FunctionDef({self.qualname} @ {self.file.path}:{self.line})"


class FieldDef:
    __slots__ = ("name", "line", "type_tokens", "initialized")

    def __init__(self, name, line, type_tokens, initialized):
        self.name = name
        self.line = line
        self.type_tokens = type_tokens
        self.initialized = initialized


class StructDef:
    __slots__ = ("name", "qualifier", "file", "line", "fields")

    def __init__(self, name, qualifier, file, line):
        self.name = name
        self.qualifier = qualifier
        self.file = file
        self.line = line
        self.fields = []

    @property
    def qualname(self):
        return f"{self.qualifier}::{self.name}" if self.qualifier else self.name


class FileIndex:
    __slots__ = ("lexed", "functions", "structs", "enums")

    def __init__(self, lexed):
        self.lexed = lexed
        self.functions = []  # FunctionDef (definitions + annotated prototypes)
        self.structs = []    # StructDef
        self.enums = {}      # {name: [member names]}


def _match_forward(tokens, open_idx):
    """Index of the `}` matching the `{` at open_idx."""
    depth = 0
    i = open_idx
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def _class_name_from(tokens, buf, keyword):
    """First depth-0 identifier after `keyword` that names the class/enum."""
    depth = 0
    seen_kw = False
    for idx in buf:
        t = tokens[idx]
        if not seen_kw:
            if t.kind == lexer.KIND_ID and t.text == keyword:
                seen_kw = True
            continue
        if t.text in "([":
            depth += 1
        elif t.text in ")]":
            depth -= 1
        elif depth == 0 and t.text == ":":
            break  # Inheritance list / underlying type.
        elif depth == 0 and t.kind == lexer.KIND_ID:
            if t.text in ("alignas", "final", "class", "struct"):
                continue
            return t.text
    return ""


def _try_function_at_brace(tokens, brace_idx):
    """If the `{` at brace_idx opens a function body, returns
    (name, explicit_qualifier, name_line); else None."""
    k = brace_idx - 1
    guard = 0
    while k >= 0:
        guard += 1
        if guard > 4096:
            return None
        t = tokens[k]
        if t.kind == lexer.KIND_ID and t.text in _TRAILER_IDS:
            k -= 1
            continue
        break
    if k < 0 or tokens[k].text != ")":
        return None
    # Walk the (possibly repeated, for ctor init lists) `name(...)` groups.
    while True:
        depth = 1
        k -= 1
        guard = 0
        while k >= 0 and depth > 0:
            guard += 1
            if guard > 65536:
                return None
            t = tokens[k].text
            if t == ")":
                depth += 1
            elif t == "(":
                depth -= 1
            k -= 1
        if k < 0:
            return None
        name_tok = tokens[k]
        if name_tok.kind != lexer.KIND_ID:
            # `operator==(`, `](`, `>(` ... not a plain function we index.
            return None
        if name_tok.text in CONTROL_KEYWORDS:
            return None
        # Explicit qualifier chain: `Class::name`.
        qual_parts = []
        q = k
        while q >= 2 and tokens[q - 1].text == "::" and \
                tokens[q - 2].kind == lexer.KIND_ID:
            qual_parts.insert(0, tokens[q - 2].text)
            q -= 2
        prev = tokens[q - 1].text if q >= 1 else ""
        if prev in (":", ","):
            # Constructor-initializer entry; keep walking left for the
            # parameter list (`Ctor(...) : a_(x), b_(y) {`).
            k = q - 2
            guard = 0
            while k >= 0 and tokens[k].text != ")":
                guard += 1
                if guard > 256:
                    return None
                k -= 1
            if k < 0:
                return None
            continue
        qualifier = qual_parts[-1] if qual_parts else ""
        return (name_tok.text, qualifier, name_tok.line)


def _statement_annotations(tokens, buf):
    return {tokens[i].text for i in buf
            if tokens[i].kind == lexer.KIND_ID and tokens[i].text in _ANNOTATIONS}


_FIELD_SKIP_LEAD = {"using", "typedef", "static", "friend", "template",
                    "public", "private", "protected", "explicit", "virtual",
                    "operator", "enum", "class", "struct"}


def _field_from_statement(tokens, buf):
    """Parses a class-level `type name [= init];` statement into a FieldDef,
    or returns None for methods / using / access specifiers / etc."""
    ids = [i for i in buf if tokens[i].kind == lexer.KIND_ID]
    if not ids:
        return None
    if tokens[ids[0]].text in _FIELD_SKIP_LEAD:
        return None
    # A `(` before any `=` / `{` means a method or constructor declaration.
    init_pos = None
    for pos, i in enumerate(buf):
        t = tokens[i].text
        if t in ("=", "{"):
            init_pos = pos
            break
        if t == "(":
            return None
    declarator = buf if init_pos is None else buf[:init_pos]
    decl_ids = [i for i in declarator if tokens[i].kind == lexer.KIND_ID]
    if len(decl_ids) < 2:
        return None  # Need at least `type name`.
    name_idx = decl_ids[-1]
    type_tokens = [tokens[i].text for i in declarator if i != name_idx]
    return FieldDef(tokens[name_idx].text, tokens[name_idx].line, type_tokens,
                    init_pos is not None)


def index_file(lexed):
    """Builds the FileIndex for one lexed file."""
    idx = FileIndex(lexed)
    tokens = lexed.tokens
    n = len(tokens)
    scope = []  # ('namespace'|'class', name) -- classes may carry StructDef.
    buf = []    # Token indices of the current decl-level statement.
    i = 0

    def innermost_class():
        for kind, name, _ in reversed(scope):
            if kind == "class":
                return name
        return ""

    def current_struct():
        if scope and scope[-1][0] == "class":
            return scope[-1][2]
        return None

    while i < n:
        t = tokens[i]
        text = t.text

        if text == "{":
            buf_texts = {tokens[b].text for b in buf
                         if tokens[b].kind == lexer.KIND_ID}
            if "enum" in buf_texts:
                name = _class_name_from(tokens, buf, "enum")
                end = _match_forward(tokens, i)
                members = []
                expect_name = True
                j = i + 1
                while j < end:
                    tj = tokens[j]
                    if expect_name and tj.kind == lexer.KIND_ID:
                        members.append(tj.text)
                        expect_name = False
                    elif tj.text == ",":
                        expect_name = True
                    elif tj.text in ("{", "("):
                        j = _match_forward(tokens, j) if tj.text == "{" else j
                    j += 1
                if name:
                    idx.enums[name] = members
                buf = []
                i = end + 1
                continue
            if ("class" in buf_texts or "struct" in buf_texts or
                    "union" in buf_texts) and \
                    not any(tokens[b].text == "=" for b in buf):
                kw = "class" if "class" in buf_texts else (
                    "struct" if "struct" in buf_texts else "union")
                name = _class_name_from(tokens, buf, kw)
                sd = StructDef(name, innermost_class(), lexed, t.line)
                scope.append(("class", name, sd))
                buf = []
                i += 1
                continue
            if "namespace" in buf_texts or \
                    (buf and tokens[buf[0]].text == "extern"):
                name = _class_name_from(tokens, buf, "namespace")
                scope.append(("namespace", name, None))
                buf = []
                i += 1
                continue
            fn = _try_function_at_brace(tokens, i)
            if fn is not None:
                name, explicit_qual, line = fn
                end = _match_forward(tokens, i)
                qualifier = explicit_qual or innermost_class()
                f = FunctionDef(name, qualifier, lexed, line, i, end,
                                _statement_annotations(tokens, buf))
                idx.functions.append(f)
                buf = []
                i = end + 1
                continue
            # Generic block (initializer braces etc.): part of the statement.
            end = _match_forward(tokens, i)
            buf.extend(range(i, end + 1))
            i = end + 1
            continue

        if text == "}":
            done = scope.pop() if scope else ("block", "", None)
            if done[0] == "class" and done[2] is not None:
                idx.structs.append(done[2])
            buf = []
            i += 1
            continue

        if text == ";":
            if buf:
                sd = current_struct()
                if sd is not None:
                    field = _field_from_statement(tokens, buf)
                    if field is not None:
                        sd.fields.append(field)
                anns = _statement_annotations(tokens, buf)
                if anns and any(tokens[b].text == "(" for b in buf):
                    # Annotated prototype: record so the annotation applies
                    # even when the definition lives elsewhere.
                    name = None
                    qual = ""
                    line = t.line
                    for pos, b in enumerate(buf):
                        if tokens[b].text == "(" and pos > 0 and \
                                tokens[buf[pos - 1]].kind == lexer.KIND_ID and \
                                tokens[buf[pos - 1]].text not in CONTROL_KEYWORDS:
                            name = tokens[buf[pos - 1]].text
                            line = tokens[buf[pos - 1]].line
                            if pos >= 3 and tokens[buf[pos - 2]].text == "::" and \
                                    tokens[buf[pos - 3]].kind == lexer.KIND_ID:
                                qual = tokens[buf[pos - 3]].text
                            break
                    if name is not None:
                        idx.functions.append(FunctionDef(
                            name, qual or innermost_class(), lexed, line,
                            annotations=anns))
            buf = []
            i += 1
            continue

        if text == ":" and len(buf) == 1 and \
                tokens[buf[0]].text in ("public", "private", "protected"):
            buf = []
            i += 1
            continue

        buf.append(i)
        i += 1

    return idx
