"""A lightweight C++ lexer.

Produces a flat token stream plus two side tables the rules need:

  * comments: {line: text} for `// adios-lint: ignore(...)` suppressions;
  * pp_lines: [(line, text)] preprocessor directives (for include checks).

The lexer is exact about the things that break naive regex linting --
string/char literals (including raw strings), block comments, line
continuations -- and deliberately simple about everything else. It never
needs a preprocessor or a compilation database.
"""

KIND_ID = "id"
KIND_NUM = "num"
KIND_STR = "str"
KIND_CHAR = "char"
KIND_PUNCT = "punct"


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind!r}, {self.text!r}, L{self.line})"


class LexedFile:
    __slots__ = ("path", "tokens", "comments", "pp_lines")

    def __init__(self, path, tokens, comments, pp_lines):
        self.path = path
        self.tokens = tokens
        self.comments = comments  # {line: comment text (joined if several)}
        self.pp_lines = pp_lines  # [(line, directive text)]


_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")

# Multi-char operators the rules care about distinguishing; everything else
# is emitted one character at a time.
_TWO_CHAR = {"::", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
             "*=", "/=", "++", "--", "<<", ">>"}


def lex(path, text=None):
    """Lexes one file; returns a LexedFile."""
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens = []
    comments = {}
    pp_lines = []
    i = 0
    n = len(text)
    line = 1

    def note_comment(start_line, body):
        if start_line in comments:
            comments[start_line] += " " + body
        else:
            comments[start_line] = body

    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: consume to end of line (honoring \-continuations).
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                i += 1
            pp_lines.append((start_line, text[start:i]))
            continue
        at_line_start = False
        # Line comment.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            note_comment(line, text[i + 2:j].strip())
            i = j
            continue
        # Block comment.
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                j = n
            body = text[i + 2:j]
            note_comment(line, body.strip())
            line += body.count("\n")
            i = j + 2 if j < n else n
            continue
        # Raw string literal: R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j != -1 and j - (i + 2) <= 16:
                delim = text[i + 2:j]
                end_marker = ")" + delim + '"'
                k = text.find(end_marker, j + 1)
                if k != -1:
                    body = text[i:k + len(end_marker)]
                    tokens.append(Token(KIND_STR, body, line))
                    line += body.count("\n")
                    i = k + len(end_marker)
                    continue
        # String / char literal.
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    break  # Unterminated; bail at EOL.
                j += 1
            body = text[i:min(j + 1, n)]
            tokens.append(Token(KIND_STR if quote == '"' else KIND_CHAR, body, line))
            i = min(j + 1, n)
            continue
        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token(KIND_ID, text[i:j], line))
            i = j
            continue
        # Number (good enough: digits, hex, suffixes, dots, exponent signs).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] == "." or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(KIND_NUM, text[i:j], line))
            i = j
            continue
        # Punctuation.
        if i + 1 < n and text[i:i + 2] in _TWO_CHAR:
            tokens.append(Token(KIND_PUNCT, text[i:i + 2], line))
            i += 2
            continue
        tokens.append(Token(KIND_PUNCT, c, line))
        i += 1

    return LexedFile(path, tokens, comments, pp_lines)
