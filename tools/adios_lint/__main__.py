"""Makes the package runnable as `python3 tools/adios_lint`."""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from adios_lint.cli import main
else:
    from .cli import main

sys.exit(main(sys.argv[1:]))
