"""Command-line driver for adios-lint.

    python3 tools/adios_lint [paths...] [--root DIR] [--rules r1,r2]
                             [--list] [--stats]

Paths default to `src` under the root (which defaults to the current
directory). Exit status is 1 when any unsuppressed finding remains, 0
otherwise -- CI runs `python3 tools/adios_lint src`.
"""

import os
import sys

from . import callgraph, cpp_index, lexer, rules

_EXTS = (".h", ".hpp", ".cc", ".cpp")

# The docs corpus the default-off-knob rule searches for backticked knob
# names, relative to --root.
_DOC_SOURCES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")


def _collect_files(paths):
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames.sort()
            for fname in sorted(filenames):
                if fname.endswith(_EXTS):
                    out.append(os.path.join(dirpath, fname))
    return out


def _docs_corpus(root):
    chunks = []
    for name in _DOC_SOURCES:
        path = os.path.join(root, name)
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                chunks.append(f.read())
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for fname in sorted(os.listdir(docs_dir)):
            if fname.endswith(".md"):
                with open(os.path.join(docs_dir, fname), "r",
                          encoding="utf-8", errors="replace") as f:
                    chunks.append(f.read())
    return "\n".join(chunks)


def main(argv):
    root = os.getcwd()
    paths = []
    enabled = None
    show_stats = False
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--list":
            for r in rules.ALL_RULES:
                print(r)
            return 0
        if a == "--stats":
            show_stats = True
        elif a.startswith("--root="):
            root = a.split("=", 1)[1]
        elif a == "--root":
            i += 1
            root = argv[i]
        elif a.startswith("--rules="):
            enabled = [r.strip() for r in a.split("=", 1)[1].split(",")]
        elif a == "--rules":
            i += 1
            enabled = [r.strip() for r in argv[i].split(",")]
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        else:
            paths.append(a)
        i += 1

    if enabled is not None:
        unknown = [r for r in enabled if r not in rules.ALL_RULES]
        if unknown:
            print(f"adios-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    if not paths:
        paths = [os.path.join(root, "src")]
    files = _collect_files(paths)
    if not files:
        print("adios-lint: no input files", file=sys.stderr)
        return 2

    indexes = []
    for path in files:
        indexes.append(cpp_index.index_file(lexer.lex(path)))
    graph = callgraph.CallGraph(indexes)
    docs_text = _docs_corpus(root)
    findings = rules.run_rules(indexes, graph, root, docs_text, enabled)

    for f in findings:
        print(f.render())
    if show_stats:
        n_fns = sum(len(idx.functions) for idx in indexes)
        n_susp = sum(1 for idx in indexes for fn in idx.functions
                     if fn.may_suspend)
        print(f"-- {len(files)} files, {n_fns} functions indexed, "
              f"{n_susp} may-suspend, {len(findings)} finding(s)",
              file=sys.stderr)
    return 1 if findings else 0
