"""The adios-lint rule catalog.

Each rule is a static complement to one of the runtime invariant checks:

  suspend-safety    <- InvariantChecker's page-state machine (src/check/):
                       raw PageEntry pointers / frame indices held live
                       across a call into a may-suspend function are stale.
  trace-pairing     <- Tracer stall accounting: every paired TraceEvent
                       (kX / kXDone) must be closed on every function exit.
  sim-time-hygiene  <- the SimTime discipline: wall-clock sources live only
                       in src/base/; SimTime arithmetic never mixes them in.
  default-off-knob  <- SystemConfig presets: every config knob carries an
                       explicit default initializer and appears in a docs
                       knob table.

Suppression: `// adios-lint: ignore(rule[,rule]) -- reason` on the finding
line or the line above; `ignore(all)` silences every rule for that line.
"""

import os
import re

from . import cpp_index

RULE_SUSPEND = "suspend-safety"
RULE_TRACE = "trace-pairing"
RULE_SIMTIME = "sim-time-hygiene"
RULE_KNOB = "default-off-knob"

ALL_RULES = (RULE_SUSPEND, RULE_TRACE, RULE_SIMTIME, RULE_KNOB)

_SUPPRESS_RE = re.compile(r"adios-lint:\s*ignore\(([^)]*)\)")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_suppressed(lexed, line, rule):
    """True if the finding line, or the contiguous comment block directly
    above it, carries a matching `adios-lint: ignore(...)`."""
    probes = [line]
    p = line - 1
    while p in lexed.comments and len(probes) < 8:
        probes.append(p)
        p -= 1
    for probe in probes:
        comment = lexed.comments.get(probe)
        if not comment:
            continue
        m = _SUPPRESS_RE.search(comment)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        if rule in rules or "all" in rules:
            return True
    return False


# ---------------------------------------------------------------------------
# suspend-safety
# ---------------------------------------------------------------------------

# Types whose raw references/pointers go stale across a suspension: the page
# table can be remapped, the frame reused, the entry rewritten.
HAZARD_TYPES = {"PageEntry"}

# Calls whose *return value* is a hazard: a page-table entry reference or a
# victim frame index that a concurrent evictor/fetcher may invalidate.
HAZARD_PRODUCERS = {"entry": "page-table entry",
                    "SelectVictim": "victim frame index"}


def _match_paren_forward(tokens, open_idx, end):
    depth = 0
    i = open_idx
    while i <= end:
        t = tokens[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return end


def _check_suspend_safety(fn, graph, findings):
    tokens = fn.file.tokens
    path = fn.file.path
    # var name -> {"kind": description, "state": "live" | "suspended",
    #              "by": (callee, line), "reported": bool}
    hazards = {}
    i = fn.body_start + 1
    end = fn.body_end
    while i < end:
        t = tokens[i]
        if t.kind != "id":
            i += 1
            continue
        nxt = tokens[i + 1].text if i + 1 < end else ""

        # Declaration of a hazard-typed local: `PageEntry* e`, `const
        # PageEntry& e`.  Scan forward over cv/ref tokens to the name.
        if t.text in HAZARD_TYPES and nxt in ("*", "&"):
            j = i + 1
            while j < end and tokens[j].text in ("*", "&", "const"):
                j += 1
            if j < end and tokens[j].kind == "id":
                hazards[tokens[j].text] = {
                    "kind": f"raw {t.text} reference", "state": "live",
                    "by": None, "reported": False}
                i = j + 1
                continue

        # Binding from a hazard producer: `auto& e = entry(v)`,
        # `uint64_t victim = mm_->SelectVictim()`.
        if t.text in HAZARD_PRODUCERS and nxt == "(":
            # Look left for `target =`.
            k = i - 1
            while k > fn.body_start and tokens[k].text in ("::", ".", "->") :
                k -= 2  # Skip `mm_->` / `pt_.` receiver chains.
            if k > fn.body_start and tokens[k].text == "&":
                k -= 1  # Address-of: `e = &pt.entry(v)`.
            if k > fn.body_start and tokens[k].text == "=" and \
                    tokens[k - 1].kind == "id":
                hazards[tokens[k - 1].text] = {
                    "kind": HAZARD_PRODUCERS[t.text], "state": "live",
                    "by": None, "reported": False}
            i += 1  # Keep walking into the args: they may use stale hazards.
            continue

        # A call into a may-suspend function: everything held live is now
        # stale.  Uses *inside* the call's argument list happen before the
        # suspension, so skip past the closing paren first.
        if nxt == "(" and t.text not in cpp_index.CONTROL_KEYWORDS and \
                graph.is_suspending_name(t.text):
            close = _match_paren_forward(tokens, i + 1, end)
            for h in hazards.values():
                if h["state"] == "live":
                    h["state"] = "suspended"
                    h["by"] = (t.text, t.line)
            i = close + 1
            continue

        # Use of a hazard variable.
        h = hazards.get(t.text)
        if h is not None:
            if nxt == "=" and tokens[i - 1].text not in ("*", ".", "->"):
                # Plain reassignment: the old binding dies here.  If the RHS
                # is a hazard producer, its branch re-binds the name; a store
                # through the pointer (`*e = ...`) is still a use.
                del hazards[t.text]
                i += 1
                continue
            if h["state"] == "suspended" and not h["reported"]:
                callee, cline = h["by"]
                if not is_suppressed(fn.file, t.line, RULE_SUSPEND):
                    findings.append(Finding(
                        path, t.line, RULE_SUSPEND,
                        f"'{t.text}' ({h['kind']}) used after possible "
                        f"suspension in '{callee}' (line {cline}); re-fetch "
                        f"it after the call or annotate the callee "
                        f"ADIOS_NO_SUSPEND"))
                h["reported"] = True
        i += 1


# Page-state-word lock discipline (src/mem/page_state.h): a successful
# TryLockForFetch / TryMarkEvict / TryClaimEvict makes the caller the
# exclusive owner of that page's Fetching/Evicting transition. Ownership must
# be resolved (mapped, aborted, finished, or cancelled) before the function
# reaches a suspension point — an owner parked on a fiber wedges every other
# actor that CASes on the page. The runtime complement is the checker's
# "evict claim held across a suspension point" audit; this is the static
# half, so the bug is a lint finding before it is a sim hang.
LOCK_ACQUIRERS = {
    "TryLockForFetch": "Fetching",
    "TryMarkEvict": "Evicting",
    "TryClaimEvict": "Evicting",
}

# Calls that resolve the held transition: the word-level exits plus the
# page-table/memory-manager wrappers that complete or unwind them.
LOCK_RELEASERS = {
    "TryMapPresent", "TryAbortFetch", "FinishEvict", "CancelEvict",
    "MarkPresent", "MarkFetchAborted", "MarkRemote",
    "CompleteFetch", "AbortFetch", "EvictPage",
}


def _check_lock_hold(fn, graph, findings):
    tokens = fn.file.tokens
    held = None  # (state-name, acquirer, acquire-line)
    i = fn.body_start + 1
    end = fn.body_end
    while i < end:
        t = tokens[i]
        nxt = tokens[i + 1].text if i + 1 < end else ""
        if t.kind != "id" or nxt != "(":
            i += 1
            continue
        if t.text in LOCK_ACQUIRERS:
            held = (LOCK_ACQUIRERS[t.text], t.text, t.line)
        elif t.text in LOCK_RELEASERS:
            held = None
        elif t.text not in cpp_index.CONTROL_KEYWORDS and \
                graph.is_suspending_name(t.text):
            if held is not None:
                state, acq, aline = held
                if not is_suppressed(fn.file, t.line, RULE_SUSPEND):
                    findings.append(Finding(
                        fn.file.path, t.line, RULE_SUSPEND,
                        f"page-state {state} ownership taken by '{acq}' "
                        f"(line {aline}) is held across may-suspend call "
                        f"'{t.text}': complete or abort the transition "
                        f"before suspending"))
                held = None  # One report per acquisition.
        i += 1


def _check_no_suspend_annotations(graph, findings):
    for fn in graph.no_suspend_violations():
        callee, line = fn.taint_path
        if not is_suppressed(fn.file, fn.line, RULE_SUSPEND):
            findings.append(Finding(
                fn.file.path, fn.line, RULE_SUSPEND,
                f"'{fn.qualname}' is annotated ADIOS_NO_SUSPEND but may "
                f"reach a suspension point via '{callee}' (line {line})"))


# ---------------------------------------------------------------------------
# trace-pairing
# ---------------------------------------------------------------------------

def _trace_pairs(indexes):
    """{opener: closer} derived from any enum named TraceEvent: member kX is
    paired when kXDone exists."""
    pairs = {}
    for idx in indexes:
        members = idx.enums.get("TraceEvent")
        if not members:
            continue
        mset = set(members)
        for m in members:
            if m + "Done" in mset:
                pairs[m] = m + "Done"
    return pairs


def _check_trace_pairing(fn, pairs, findings):
    if not pairs:
        return
    closers = {v: k for k, v in pairs.items()}
    tokens = fn.file.tokens
    open_counts = {}
    i = fn.body_start + 1
    end = fn.body_end

    def report(line):
        pending = sorted(k for k, v in open_counts.items() if v > 0)
        if pending and not is_suppressed(fn.file, line, RULE_TRACE):
            findings.append(Finding(
                fn.file.path, line, RULE_TRACE,
                f"'{fn.qualname}' exits with unclosed trace event(s) "
                f"{', '.join(pending)}: record the matching *Done before "
                f"every return"))

    while i < end:
        t = tokens[i]
        if t.kind == "id" and t.text == "Record" and i + 1 < end and \
                tokens[i + 1].text == "(":
            close = _match_paren_forward(tokens, i + 1, end)
            for j in range(i + 2, close):
                tj = tokens[j]
                if tj.kind != "id":
                    continue
                if tj.text in pairs:
                    open_counts[tj.text] = open_counts.get(tj.text, 0) + 1
                elif tj.text in closers:
                    base = closers[tj.text]
                    open_counts[base] = max(0, open_counts.get(base, 0) - 1)
            i = close + 1
            continue
        if t.kind == "id" and t.text == "return":
            report(t.line)
            # Reset so one unbalanced path reports once, not at every
            # later return too.
            open_counts = {k: 0 for k in open_counts}
        i += 1
    report(fn.file.tokens[end].line)


# ---------------------------------------------------------------------------
# sim-time-hygiene
# ---------------------------------------------------------------------------

WALL_CLOCK_IDS = {
    "chrono", "steady_clock", "system_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec", "timeval",
    "__rdtsc", "__rdtscp", "rdtsc", "rdtscp",
    "Tsc", "TscFenced", "MeasureTscGhz",
}

WALL_CLOCK_INCLUDES = ("<chrono>", "<ctime>", "<sys/time.h>",
                       "<x86intrin.h>", "<time.h>")

SIMTIME_TYPES = {"SimTime", "SimDuration"}
_ARITH_OPS = {"+", "-", "*", "/", "+=", "-="}


def _in_base(path, root):
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    parts = rel.replace(os.sep, "/").split("/")
    return parts[:2] == ["src", "base"]


def _check_sim_time(lexed, root, findings):
    exempt = _in_base(lexed.path, root)
    if not exempt:
        for line, text in lexed.pp_lines:
            if "include" not in text:
                continue
            for inc in WALL_CLOCK_INCLUDES:
                if inc in text:
                    if not is_suppressed(lexed, line, RULE_SIMTIME):
                        findings.append(Finding(
                            lexed.path, line, RULE_SIMTIME,
                            f"wall-clock include {inc} outside src/base/: "
                            f"simulation code must use SimTime (src/base/"
                            f"time.h); wall-clock sources live in src/base/ "
                            f"only"))
                    break
        seen_lines = set()
        for t in lexed.tokens:
            if t.kind == "id" and t.text in WALL_CLOCK_IDS and \
                    t.line not in seen_lines:
                seen_lines.add(t.line)
                if not is_suppressed(lexed, t.line, RULE_SIMTIME):
                    findings.append(Finding(
                        lexed.path, t.line, RULE_SIMTIME,
                        f"wall-clock identifier '{t.text}' outside "
                        f"src/base/: derive time from the Engine clock "
                        f"(SimTime), not the host"))

    # Everywhere (src/base included): no statement may mix SimTime
    # arithmetic with a wall-clock value.
    stmt = []
    for t in lexed.tokens:
        if t.text in (";", "{", "}"):
            _check_mix_stmt(lexed, stmt, findings)
            stmt = []
        else:
            stmt.append(t)
    _check_mix_stmt(lexed, stmt, findings)


def _check_mix_stmt(lexed, stmt, findings):
    has_sim = any(t.kind == "id" and t.text in SIMTIME_TYPES for t in stmt)
    if not has_sim:
        return
    wall = next((t for t in stmt
                 if t.kind == "id" and t.text in WALL_CLOCK_IDS), None)
    if wall is None:
        return
    if not any(t.text in _ARITH_OPS for t in stmt):
        return
    if not is_suppressed(lexed, wall.line, RULE_SIMTIME):
        findings.append(Finding(
            lexed.path, wall.line, RULE_SIMTIME,
            f"statement mixes SimTime arithmetic with wall-clock value "
            f"'{wall.text}': convert explicitly at the src/base boundary"))


# ---------------------------------------------------------------------------
# default-off-knob
# ---------------------------------------------------------------------------

_CONFIG_SUFFIXES = ("Config", "Options", "Params", "Policy")

_SCALAR_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "size_t", "ssize_t", "uintptr_t", "intptr_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "SimTime", "SimDuration", "RemoteAddr",
}


def is_config_struct(sd):
    return sd.name == "SystemConfig" or sd.name.endswith(_CONFIG_SUFFIXES)


def _is_scalar_field(field, enum_names):
    tt = field.type_tokens
    if "*" in tt:
        return True
    return any(x in _SCALAR_TYPES or x in enum_names for x in tt)


def _check_knobs(indexes, docs_text, findings):
    enum_names = set()
    for idx in indexes:
        enum_names.update(idx.enums.keys())
    for idx in indexes:
        for sd in idx.structs:
            if not is_config_struct(sd):
                continue
            # A suppression on the struct declaration line covers every
            # field (for *Params records that are data, not tunables).
            if is_suppressed(idx.lexed, sd.line, RULE_KNOB):
                continue
            for f in sd.fields:
                scalar = _is_scalar_field(f, enum_names)
                if scalar and not f.initialized:
                    if not is_suppressed(idx.lexed, f.line, RULE_KNOB):
                        findings.append(Finding(
                            idx.lexed.path, f.line, RULE_KNOB,
                            f"config knob '{sd.qualname}::{f.name}' has no "
                            f"default initializer: every knob must be "
                            f"default-off / explicitly defaulted"))
                if docs_text is not None and f"`{f.name}`" not in docs_text:
                    if not is_suppressed(idx.lexed, f.line, RULE_KNOB):
                        findings.append(Finding(
                            idx.lexed.path, f.line, RULE_KNOB,
                            f"config knob '{sd.qualname}::{f.name}' is not "
                            f"documented: add it (backticked) to the knob "
                            f"table (docs/KNOBS.md)"))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_rules(indexes, graph, root, docs_text, enabled=None):
    enabled = set(enabled) if enabled else set(ALL_RULES)
    findings = []
    pairs = _trace_pairs(indexes)
    for idx in indexes:
        if RULE_SIMTIME in enabled:
            _check_sim_time(idx.lexed, root, findings)
        for fn in idx.functions:
            if fn.decl_only:
                continue
            if RULE_SUSPEND in enabled:
                _check_suspend_safety(fn, graph, findings)
                _check_lock_hold(fn, graph, findings)
            if RULE_TRACE in enabled:
                _check_trace_pairing(fn, pairs, findings)
    if RULE_SUSPEND in enabled:
        _check_no_suspend_annotations(graph, findings)
    if RULE_KNOB in enabled:
        _check_knobs(indexes, docs_text, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
